module Dsm = Adsm_dsm.Dsm
module Rng = Adsm_sim.Rng

type params = { cities : int; queue_depth : int }

let default = { cities = 13; queue_depth = 2 }

let tiny = { cities = 8; queue_depth = 2 }

let data_desc p = Printf.sprintf "%d cities" p.cities

let sync_desc = "l"

let ns_per_node = 12_000 (* cost of expanding one search node *)

(* Queue record layout: [depth; cost; city_0 .. city_{depth-1}] *)
let record_size p = p.cities + 2

let queue_capacity = 32_768

let make t p =
  let n = p.cities in
  let dist = Dsm.alloc_i32 t ~name:"tsp-dist" ~len:(n * n) in
  let queue =
    Dsm.alloc_i32 t ~name:"tsp-queue" ~len:(queue_capacity * record_size p)
  in
  (* control[0] = head, control[1] = tail, control[2] = in-flight count,
     control[3] = best tour cost *)
  let control = Dsm.alloc_i32 t ~name:"tsp-control" ~len:16 in
  let l = Dsm.fresh_lock t in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx in
    let get_d i j = Int32.to_int (Dsm.i32_get ctx dist ((i * n) + j)) in
    (* Processor 0 generates the distance matrix and seeds the queue. *)
    if me = 0 then begin
      let rng = Rng.create 424243L in
      for i = 0 to n - 1 do
        for j = 0 to i - 1 do
          let d = 1 + Rng.int rng 99 in
          Dsm.i32_set ctx dist ((i * n) + j) (Int32.of_int d);
          Dsm.i32_set ctx dist ((j * n) + i) (Int32.of_int d)
        done;
        Dsm.i32_set ctx dist ((i * n) + i) 0l
      done;
      (* Root record: tour starting (and implicitly ending) at city 0. *)
      Dsm.i32_set ctx queue 0 1l;
      Dsm.i32_set ctx queue 1 0l;
      Dsm.i32_set ctx queue 2 0l;
      Dsm.i32_set ctx control 0 0l;
      Dsm.i32_set ctx control 1 1l;
      Dsm.i32_set ctx control 2 0l;
      Dsm.i32_set ctx control 3 Int32.max_int
    end;
    Dsm.barrier ctx;
    (* Private copy of the distance matrix for the inner loops (read-only
       shared data; the copy models the apps' local caching). *)
    let d = Array.init n (fun i -> Array.init n (fun j -> get_d i j)) in
    let min_edge =
      Array.init n (fun i ->
          Common.fold_range 0 n ~init:max_int ~f:(fun acc j ->
              if i <> j && d.(i).(j) < acc then d.(i).(j) else acc))
    in
    let best = ref max_int in
    let improved = ref false in
    let expanded = ref 0 in
    (* Depth-first solve below the queue cutoff; improved bounds are
       collected locally and published at the next queue operation (small
       lock-protected writes, as in the paper's TSP). *)
    let rec dfs path cost visited depth =
      incr expanded;
      if depth = n then begin
        let total = cost + d.(List.hd path).(0) in
        if total < !best then begin
          best := total;
          improved := true
        end
      end
      else begin
        let last = List.hd path in
        let bound_rest = (n - depth) * min_edge.(last) in
        for next = 1 to n - 1 do
          if (visited lsr next) land 1 = 0 then begin
            let cost' = cost + d.(last).(next) in
            if cost' + bound_rest < !best then
              dfs (next :: path) cost' (visited lor (1 lsl next)) (depth + 1)
          end
        done
      end
    in
    (* Work loop: one critical section per dequeue (folding in the bound
       publication and the previous record's completion), and one per
       batch of child pushes. *)
    let inflight_held = ref 0 in
    let publish_best () =
      if !improved then begin
        let published = Int32.to_int (Dsm.i32_get ctx control 3) in
        if !best < published then
          Dsm.i32_set ctx control 3 (Int32.of_int !best);
        best := min !best published;
        improved := false
      end
      else best := min !best (Int32.to_int (Dsm.i32_get ctx control 3))
    in
    let continue = ref true in
    let backoff = ref 1_000_000 in
    let record = Array.make (record_size p) 0 in
    while !continue do
      Dsm.lock ctx l;
      publish_best ();
      if !inflight_held > 0 then begin
        let inflight = Int32.to_int (Dsm.i32_get ctx control 2) in
        Dsm.i32_set ctx control 2 (Int32.of_int (inflight - !inflight_held));
        inflight_held := 0
      end;
      let head = Int32.to_int (Dsm.i32_get ctx control 0)
      and tail = Int32.to_int (Dsm.i32_get ctx control 1)
      and inflight = Int32.to_int (Dsm.i32_get ctx control 2) in
      if head < tail then begin
        Dsm.i32_set ctx control 0 (Int32.of_int (head + 1));
        Dsm.i32_set ctx control 2 (Int32.of_int (inflight + 1));
        inflight_held := 1;
        let base = head mod queue_capacity * record_size p in
        for f = 0 to record_size p - 1 do
          record.(f) <- Int32.to_int (Dsm.i32_get ctx queue (base + f))
        done;
        Dsm.unlock ctx l;
        backoff := 1_000_000;
        let depth = record.(0) and cost = record.(1) in
        let path = List.rev (List.init depth (fun k -> record.(2 + k))) in
        let visited =
          List.fold_left (fun acc c -> acc lor (1 lsl c)) 0 path
        in
        expanded := 0;
        if depth > p.queue_depth then dfs path cost visited depth
        else begin
          (* Expand one level; push all surviving children in one critical
             section. *)
          incr expanded;
          let last = List.hd path in
          let children = ref [] in
          for next = 1 to n - 1 do
            if (visited lsr next) land 1 = 0 then begin
              let cost' = cost + d.(last).(next) in
              if cost' + ((n - depth) * min_edge.(last)) < !best then
                children := (next, cost') :: !children
            end
          done;
          if !children <> [] then begin
            Dsm.lock ctx l;
            publish_best ();
            List.iter
              (fun (next, cost') ->
                let tail = Int32.to_int (Dsm.i32_get ctx control 1) in
                let base = tail mod queue_capacity * record_size p in
                Dsm.i32_set ctx queue base (Int32.of_int (depth + 1));
                Dsm.i32_set ctx queue (base + 1) (Int32.of_int cost');
                List.iteri
                  (fun k c ->
                    Dsm.i32_set ctx queue (base + 2 + k) (Int32.of_int c))
                  (List.rev path);
                Dsm.i32_set ctx queue (base + 2 + depth) (Int32.of_int next);
                Dsm.i32_set ctx control 1 (Int32.of_int (tail + 1)))
              (List.rev !children);
            Dsm.unlock ctx l
          end
        end;
        Dsm.compute ctx (ns_per_node * !expanded)
      end
      else if inflight = 0 then begin
        Dsm.unlock ctx l;
        continue := false
      end
      else begin
        Dsm.unlock ctx l;
        (* Someone is still expanding; back off before polling again. *)
        Dsm.compute ctx !backoff;
        backoff := min (!backoff * 2) 8_000_000
      end
    done;
    Dsm.barrier ctx;
    if me = 0 then
      Common.set_checksum checksum (Int32.to_float (Dsm.i32_get ctx control 3));
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
