(** In-place radix-2 complex FFT on private buffers (the numerical core of
    the 3D-FFT application). *)

(** [fft ~invert re im] transforms the complex sequence in place.
    Length must be a power of two.  The inverse includes the 1/n scaling,
    so [fft ~invert:true] after [fft ~invert:false] restores the input. *)
val fft : invert:bool -> float array -> float array -> unit

val is_power_of_two : int -> bool
