type scale = Default | Tiny

type entry = {
  name : string;
  sync : string;
  data_desc : scale -> string;
  instantiate :
    scale ->
    Adsm_dsm.Dsm.t ->
    (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float);
  paper_seq_s : float;
  paper_wg : string;
  paper_fs_pct : float;
}

let pick scale ~default ~tiny =
  match scale with Default -> default | Tiny -> tiny

let all =
  [
    {
      name = "IS";
      sync = Is.sync_desc;
      data_desc =
        (fun s -> Is.data_desc (pick s ~default:Is.default ~tiny:Is.tiny));
      instantiate =
        (fun s t -> Is.make t (pick s ~default:Is.default ~tiny:Is.tiny));
      paper_seq_s = 7.8;
      paper_wg = "large";
      paper_fs_pct = 0.0;
    };
    {
      name = "3D-FFT";
      sync = Fft3d.sync_desc;
      data_desc =
        (fun s ->
          Fft3d.data_desc (pick s ~default:Fft3d.default ~tiny:Fft3d.tiny));
      instantiate =
        (fun s t ->
          Fft3d.make t (pick s ~default:Fft3d.default ~tiny:Fft3d.tiny));
      paper_seq_s = 40.8;
      paper_wg = "large";
      paper_fs_pct = 0.03;
    };
    {
      name = "SOR";
      sync = Sor.sync_desc;
      data_desc =
        (fun s -> Sor.data_desc (pick s ~default:Sor.default ~tiny:Sor.tiny));
      instantiate =
        (fun s t -> Sor.make t (pick s ~default:Sor.default ~tiny:Sor.tiny));
      paper_seq_s = 820.1;
      paper_wg = "variable";
      paper_fs_pct = 0.0;
    };
    {
      name = "TSP";
      sync = Tsp.sync_desc;
      data_desc =
        (fun s -> Tsp.data_desc (pick s ~default:Tsp.default ~tiny:Tsp.tiny));
      instantiate =
        (fun s t -> Tsp.make t (pick s ~default:Tsp.default ~tiny:Tsp.tiny));
      paper_seq_s = 48.7;
      paper_wg = "small";
      paper_fs_pct = 2.5;
    };
    {
      name = "Water";
      sync = Water.sync_desc;
      data_desc =
        (fun s ->
          Water.data_desc (pick s ~default:Water.default ~tiny:Water.tiny));
      instantiate =
        (fun s t ->
          Water.make t (pick s ~default:Water.default ~tiny:Water.tiny));
      paper_seq_s = 118.3;
      paper_wg = "medium";
      paper_fs_pct = 3.5;
    };
    {
      name = "Shallow";
      sync = Shallow.sync_desc;
      data_desc =
        (fun s ->
          Shallow.data_desc
            (pick s ~default:Shallow.default ~tiny:Shallow.tiny));
      instantiate =
        (fun s t ->
          Shallow.make t (pick s ~default:Shallow.default ~tiny:Shallow.tiny));
      paper_seq_s = 86.5;
      paper_wg = "med-large";
      paper_fs_pct = 13.9;
    };
    {
      name = "Barnes";
      sync = Barnes.sync_desc;
      data_desc =
        (fun s ->
          Barnes.data_desc (pick s ~default:Barnes.default ~tiny:Barnes.tiny));
      instantiate =
        (fun s t ->
          Barnes.make t (pick s ~default:Barnes.default ~tiny:Barnes.tiny));
      paper_seq_s = 242.0;
      paper_wg = "small";
      paper_fs_pct = 61.9;
    };
    {
      name = "ILINK";
      sync = Ilink.sync_desc;
      data_desc =
        (fun s ->
          Ilink.data_desc (pick s ~default:Ilink.default ~tiny:Ilink.tiny));
      instantiate =
        (fun s t ->
          Ilink.make t (pick s ~default:Ilink.default ~tiny:Ilink.tiny));
      paper_seq_s = 1388.3;
      paper_wg = "small";
      paper_fs_pct = 58.3;
    };
  ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = target) all

let names = List.map (fun e -> e.name) all
