module Dsm = Adsm_dsm.Dsm

type params = { rows : int; cols : int; iters : int }

(* One row of 512 float64s fills exactly one 4 KB page, mirroring the
   paper's no-false-sharing input geometry. *)
let default = { rows = 256; cols = 512; iters = 48 }

let tiny = { rows = 16; cols = 512; iters = 4 }

let data_desc p = Printf.sprintf "%dx%d" p.rows p.cols

let sync_desc = "b"

(* Per-element update cost (4 adds, 1 multiply, loads/stores). *)
let ns_per_update = 4_000

let make t p =
  let grid = Dsm.alloc_f64 t ~name:"sor-grid" ~len:(p.rows * p.cols) in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    let lo, hi = Common.band ~n:p.rows ~nprocs ~me in
    let idx i j = (i * p.cols) + j in
    (* Each processor initializes its own band: boundary elements 1,
       interior 0 (pages are already zero-filled). *)
    for i = lo to hi - 1 do
      if i = 0 || i = p.rows - 1 then
        for j = 0 to p.cols - 1 do
          Dsm.f64_set ctx grid (idx i j) 1.0
        done
      else begin
        Dsm.f64_set ctx grid (idx i 0) 1.0;
        Dsm.f64_set ctx grid (idx i (p.cols - 1)) 1.0
      end
    done;
    Dsm.barrier ctx;
    for _iter = 1 to p.iters do
      (* Red phase then black phase, separated by barriers. *)
      for phase = 0 to 1 do
        for i = max lo 1 to min (hi - 1) (p.rows - 2) do
          let j0 = 1 + ((i + phase) land 1) in
          let j = ref j0 in
          while !j <= p.cols - 2 do
            let up = Dsm.f64_get ctx grid (idx (i - 1) !j)
            and down = Dsm.f64_get ctx grid (idx (i + 1) !j)
            and left = Dsm.f64_get ctx grid (idx i (!j - 1))
            and right = Dsm.f64_get ctx grid (idx i (!j + 1)) in
            let v = 0.25 *. (up +. down +. left +. right) in
            if v <> Dsm.f64_get ctx grid (idx i !j) then
              Dsm.f64_set ctx grid (idx i !j) v;
            j := !j + 2
          done;
          Dsm.compute ctx (ns_per_update * (p.cols - 2) / 2)
        done;
        Dsm.barrier ctx
      done
    done;
    if me = 0 then begin
      let acc = ref 0. in
      for i = 0 to p.rows - 1 do
        for j = 0 to p.cols - 1 do
          acc := Common.mix !acc (Dsm.f64_get ctx grid (idx i j))
        done
      done;
      Common.set_checksum checksum !acc
    end;
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
