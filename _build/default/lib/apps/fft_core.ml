let is_power_of_two n = n > 0 && n land (n - 1) = 0

let fft ~invert re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft_core.fft: length mismatch";
  if not (is_power_of_two n) then
    invalid_arg "Fft_core.fft: length must be a power of two";
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 1 to n - 1 do
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit;
    if i < !j then begin
      let tr = re.(i) and ti = im.(i) in
      re.(i) <- re.(!j);
      im.(i) <- im.(!j);
      re.(!j) <- tr;
      im.(!j) <- ti
    end
  done;
  (* Butterflies. *)
  let len = ref 2 in
  while !len <= n do
    let ang =
      (if invert then 2.0 else -2.0) *. Float.pi /. float_of_int !len
    in
    let wr = cos ang and wi = sin ang in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = 0 to (!len / 2) - 1 do
        let a = !i + k and b = !i + k + (!len / 2) in
        let ur = re.(a) and ui = im.(a) in
        let vr = (re.(b) *. !cr) -. (im.(b) *. !ci)
        and vi = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(a) <- ur +. vr;
        im.(a) <- ui +. vi;
        re.(b) <- ur -. vr;
        im.(b) <- ui -. vi;
        let nr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := nr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  if invert then begin
    let scale = 1.0 /. float_of_int n in
    for i = 0 to n - 1 do
      re.(i) <- re.(i) *. scale;
      im.(i) <- im.(i) *. scale
    done
  end
