(** Uniform access to the eight applications, plus the paper's reported
    characteristics for side-by-side comparison in the harness. *)

type scale = Default | Tiny

type entry = {
  name : string;
  sync : string;  (** "l", "b" or "l,b" as in the paper's Table 1 *)
  data_desc : scale -> string;
  instantiate :
    scale ->
    Adsm_dsm.Dsm.t ->
    (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float);
      (** allocate shared data; returns the per-processor program and the
          checksum extractor *)
  paper_seq_s : float;  (** Table 1 sequential time (seconds) *)
  paper_wg : string;  (** Table 2 write granularity class *)
  paper_fs_pct : float;  (** Table 2 %% write-write falsely shared pages *)
}

val all : entry list
(** In the paper's presentation order: IS, 3D-FFT, SOR, TSP, Water,
    Shallow, Barnes, ILINK. *)

val find : string -> entry option

val names : string list
