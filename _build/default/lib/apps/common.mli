(** Helpers shared by the application ports. *)

(** [band ~n ~nprocs ~me] is the [\[lo, hi)] row range of processor [me]
    under contiguous block partitioning. *)
val band : n:int -> nprocs:int -> me:int -> int * int

(** Rounds [x] up to the next multiple of [m]. *)
val round_up : int -> int -> int

(** Fold over [lo..hi-1]. *)
val fold_range : int -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

(** A result cell written by processor 0 at the end of a run, used to
    compare results across protocols. *)
type checksum

val new_checksum : unit -> checksum

val set_checksum : checksum -> float -> unit

val get_checksum : checksum -> float
(** @raise Failure if the run never set it. *)

(** Stable floating-point combination for checksums. *)
val mix : float -> float -> float
