let band ~n ~nprocs ~me =
  let per = n / nprocs and extra = n mod nprocs in
  let lo = (me * per) + min me extra in
  let hi = lo + per + if me < extra then 1 else 0 in
  (lo, hi)

let round_up x m = (x + m - 1) / m * m

let fold_range lo hi ~init ~f =
  let rec go acc i = if i >= hi then acc else go (f acc i) (i + 1) in
  go init lo

type checksum = float option ref

let new_checksum () = ref None

let set_checksum c v = c := Some v

let get_checksum c =
  match !c with
  | Some v -> v
  | None -> failwith "checksum: run did not produce a result"

let mix acc v = (acc *. 0.6180339887498949) +. v
