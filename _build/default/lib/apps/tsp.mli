(** Branch-and-bound travelling salesman (paper Section 5).

    A shared queue holds tour prefixes up to a fixed depth; deeper
    subtrees are solved by local depth-first search.  Queue pushes, pops
    and bound updates modify only a few words under a lock, so the write
    granularity is small and there is little write-write false sharing —
    the pattern on which MW (cheap small diffs) beats whole-page SW. *)

type params = { cities : int; queue_depth : int }

(** Scaled-down stand-in for the paper's 19-city input. *)
val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
