(** ILINK-style genetic linkage analysis kernel (paper Section 5).

    The production ILINK inputs are proprietary pedigree data, so this is
    a synthetic kernel with the paper's documented sharing structure: a
    pool of sparse "genarrays" in shared memory whose nonzero elements a
    master processor assigns to all processors round-robin.  Round-robin
    assignment of scattered nonzeros makes the dominant pattern
    write-write false sharing (the paper reports 58% of pages), while
    pages whose nonzeros happen to belong to one processor stay
    single-writer but sparse (so SW-mode whole-page transfers move more
    data than the diffs would — visible in the WFS data volume, as the
    paper notes). *)

type params = {
  genarrays : int;
  elements : int;  (** per genarray *)
  density : float;  (** fraction of nonzero elements *)
  iters : int;
}

val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
