(** NAS 3D-FFT kernel (paper Section 5).

    The complex grid is partitioned into plane bands along the first
    dimension.  Each iteration evolves the local planes (overwriting them
    completely), transposes into a second grid by reading remote planes —
    producer-consumer communication — and runs FFTs along the dimensions
    that are locally contiguous.  Per-processor partial norms share a
    single page, reproducing the paper's one falsely-shared page with
    small (tens of bytes) modifications out of thousands of pages. *)

type params = { n1 : int; n2 : int; n3 : int; iters : int }

(** Scaled-down stand-in for the paper's 64x64x64 input. *)
val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
