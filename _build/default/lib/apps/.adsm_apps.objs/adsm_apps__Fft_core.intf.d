lib/apps/fft_core.mli:
