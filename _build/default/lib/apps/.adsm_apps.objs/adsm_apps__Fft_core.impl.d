lib/apps/fft_core.ml: Array Float
