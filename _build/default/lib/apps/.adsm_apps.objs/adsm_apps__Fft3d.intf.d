lib/apps/fft3d.mli: Adsm_dsm
