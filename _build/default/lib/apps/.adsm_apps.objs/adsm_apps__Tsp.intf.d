lib/apps/tsp.mli: Adsm_dsm
