lib/apps/is.mli: Adsm_dsm
