lib/apps/registry.ml: Adsm_dsm Barnes Fft3d Ilink Is List Shallow Sor String Tsp Water
