lib/apps/water.ml: Adsm_dsm Adsm_sim Array Common Float Hashtbl Int64 Option Printf
