lib/apps/ilink.ml: Adsm_dsm Adsm_sim Array Common List Printf
