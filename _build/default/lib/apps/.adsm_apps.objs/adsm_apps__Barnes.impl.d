lib/apps/barnes.ml: Adsm_dsm Adsm_sim Array Common Int64 Printf
