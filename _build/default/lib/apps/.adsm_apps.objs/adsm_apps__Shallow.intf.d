lib/apps/shallow.mli: Adsm_dsm
