lib/apps/sor.ml: Adsm_dsm Common Printf
