lib/apps/sor.mli: Adsm_dsm
