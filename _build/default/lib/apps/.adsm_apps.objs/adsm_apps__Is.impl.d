lib/apps/is.ml: Adsm_dsm Adsm_sim Array Common Int32 Int64 Printf
