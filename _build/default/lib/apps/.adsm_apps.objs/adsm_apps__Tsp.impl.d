lib/apps/tsp.ml: Adsm_dsm Adsm_sim Array Common Int32 List Printf
