lib/apps/fft3d.ml: Adsm_dsm Array Common Fft_core Printf
