lib/apps/ilink.mli: Adsm_dsm
