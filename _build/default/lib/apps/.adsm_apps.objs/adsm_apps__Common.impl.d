lib/apps/common.ml:
