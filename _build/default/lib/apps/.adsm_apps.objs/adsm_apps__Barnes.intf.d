lib/apps/barnes.mli: Adsm_dsm
