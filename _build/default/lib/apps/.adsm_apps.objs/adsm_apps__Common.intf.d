lib/apps/common.mli:
