lib/apps/registry.mli: Adsm_dsm
