lib/apps/shallow.ml: Adsm_dsm Common List Printf
