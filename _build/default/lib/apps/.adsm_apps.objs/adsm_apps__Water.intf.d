lib/apps/water.mli: Adsm_dsm
