(** SPLASH Water-style molecular dynamics (paper Section 5).

    Molecules are stored contiguously (about six records per page) and
    block-partitioned, so band boundaries fall mid-page: the position
    updates of adjacent processors falsely share a small fraction of
    pages, as in the paper.  Inter-molecular force contributions are
    accumulated into other processors' molecules under per-region locks,
    which orders those writes (no false sharing from them, but plenty of
    migratory lock traffic). *)

type params = { molecules : int; steps : int; cutoff : float }

(** Scaled-down stand-in for the paper's 512-molecule input (same
    molecule count, fewer steps, lighter per-pair cost model). *)
val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
