(** NAS IS kernel: parallel bucket-sort ranking (paper Section 5).

    Each processor counts its private keys into private buckets, then adds
    them into the shared bucket array under a lock.  The shared bucket
    pages are therefore migratory — passed from processor to processor and
    completely overwritten by each — the pattern on which SW beats MW and
    WFS keeps every page in SW mode. *)

type params = { total_keys : int; buckets : int; iters : int }

(** Scaled-down stand-in for the paper's 2^20-key class-A-style input. *)
val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
