(** NCAR shallow-water benchmark (paper Section 5).

    Finite differences on 2D grids, parallelized in bands of rows with
    sharing across band edges.  With the default geometry a grid row is a
    quarter page, so band boundaries fall mid-page and a measurable
    fraction of pages is write-write falsely shared — the paper's clear
    case for per-page adaptation (WFS beats both MW and SW). *)

type params = { rows : int; cols : int; iters : int }

(** Scaled-down stand-in for the paper's 1024x256 input. *)
val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
