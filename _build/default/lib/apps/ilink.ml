module Dsm = Adsm_dsm.Dsm
module Rng = Adsm_sim.Rng

type params = {
  genarrays : int;
  elements : int;
  density : float;
  iters : int;
}

let default = { genarrays = 8; elements = 4096; density = 0.3; iters = 8 }

let tiny = { genarrays = 2; elements = 1024; density = 0.3; iters = 2 }

let data_desc p =
  Printf.sprintf "%d genarrays x %d (%.0f%% dense)" p.genarrays p.elements
    (100. *. p.density)

let sync_desc = "b"

let ns_per_nonzero = 600_000

let ns_per_element = 2_000

let make t p =
  let size = p.genarrays * p.elements in
  let pool = Dsm.alloc_f64 t ~name:"ilink-genarrays" ~len:size in
  let result = Dsm.alloc_f64 t ~name:"ilink-result" ~len:8 in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    (* The nonzero structure is deterministic, so every processor computes
       the same round-robin assignment without communication (the master's
       assignment step in the real code). *)
    let rng = Rng.create 20260705L in
    let nonzeros = ref [] in
    for g = 0 to p.genarrays - 1 do
      for e = 0 to p.elements - 1 do
        if Rng.float rng < p.density then
          nonzeros := ((g * p.elements) + e) :: !nonzeros
      done
    done;
    let nonzeros = Array.of_list (List.rev !nonzeros) in
    (* Master initializes the sparse pool. *)
    if me = 0 then
      Array.iteri
        (fun k idx ->
          Dsm.f64_set ctx pool idx (1.0 +. (float_of_int (k mod 97) /. 97.)))
        nonzeros;
    Dsm.barrier ctx;
    for _iter = 1 to p.iters do
      (* Each processor updates its round-robin share of the nonzeros:
         scattered concurrent writes — heavy write-write false sharing. *)
      let work = ref 0 in
      Array.iteri
        (fun k idx ->
          if k mod nprocs = me then begin
            incr work;
            let v = Dsm.f64_get ctx pool idx in
            Dsm.f64_set ctx pool idx (v *. 0.99 +. 0.013)
          end)
        nonzeros;
      Dsm.compute ctx (ns_per_nonzero * !work);
      Dsm.barrier ctx;
      (* The master sums the contributions. *)
      if me = 0 then begin
        let acc = ref 0. in
        Array.iter (fun idx -> acc := !acc +. Dsm.f64_get ctx pool idx) nonzeros;
        Dsm.f64_set ctx result 0 !acc;
        Dsm.compute ctx (ns_per_element * Array.length nonzeros)
      end;
      Dsm.barrier ctx
    done;
    if me = 0 then Common.set_checksum checksum (Dsm.f64_get ctx result 0);
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
