(** Plain-text rendering helpers for the paper-reproduction tables and
    figures. *)

(** [render ~title ~header rows] lays out a left-aligned text table with a
    column-width pass. *)
val render : title:string -> header:string list -> string list list -> string

(** Horizontal ASCII bar of [width] cells for [value] out of [max]. *)
val bar : width:int -> value:float -> max:float -> string

(** [series_plot ~width ~height points] draws a crude ASCII chart of one or
    more named series sampled on a common x-axis. *)
val series_plot :
  width:int -> height:int -> (string * float array) list -> string

val mb : int -> string
(** Bytes rendered as "12.34" megabytes. *)

val thousands : int -> string
(** Count rendered in units of 10^3 with two decimals, as in Table 4. *)
