let render ~title ~header rows =
  let all = header :: rows in
  let cols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let line row =
    let cells =
      List.mapi
        (fun c w -> pad (Option.value ~default:"" (List.nth_opt row c)) w)
        widths
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let body = List.map line rows in
  String.concat "\n" ((title :: line header :: sep :: body) @ [ "" ])

let bar ~width ~value ~max:maxv =
  let n =
    if maxv <= 0. then 0
    else
      let f = value /. maxv in
      let f = Float.max 0. (Float.min 1. f) in
      int_of_float (Float.round (f *. float_of_int width))
  in
  String.make n '#' ^ String.make (width - n) ' '

let series_plot ~width ~height named =
  ignore width;
  let maxv =
    List.fold_left
      (fun acc (_, ys) -> Array.fold_left Float.max acc ys)
      0. named
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, ys) ->
      Buffer.add_string buf (Printf.sprintf "%-8s" name);
      Array.iter
        (fun y ->
          let level =
            if maxv <= 0. then 0
            else
              int_of_float
                (Float.round (y /. maxv *. float_of_int (height - 1)))
          in
          let glyph =
            match level with
            | 0 -> if y > 0. then '.' else '_'
            | 1 -> ':'
            | 2 -> '-'
            | 3 -> '='
            | 4 -> '+'
            | 5 -> '*'
            | _ -> '#'
          in
          Buffer.add_char buf glyph)
        ys;
      Buffer.add_string buf (Printf.sprintf "  (max %.0f)\n" (Array.fold_left Float.max 0. ys)))
    named;
  Buffer.contents buf

let mb bytes = Printf.sprintf "%.2f" (float_of_int bytes /. 1_048_576.)

let thousands n = Printf.sprintf "%.2f" (float_of_int n /. 1_000.)
