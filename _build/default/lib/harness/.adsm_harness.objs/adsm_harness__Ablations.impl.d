lib/harness/ablations.ml: Adsm_apps Adsm_dsm Adsm_net List Option Printf Runner String Tables
