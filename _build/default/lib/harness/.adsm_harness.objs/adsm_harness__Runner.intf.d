lib/harness/runner.mli: Adsm_apps Adsm_dsm
