lib/harness/ablations.mli:
