lib/harness/tables.ml: Array Buffer Float List Option Printf String
