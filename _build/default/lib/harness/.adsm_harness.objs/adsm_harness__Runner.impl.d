lib/harness/runner.ml: Adsm_apps Adsm_dsm Adsm_sim Fun Hashtbl List
