lib/harness/experiments.ml: Adsm_apps Adsm_dsm Adsm_sim Filename Fun List Printf Runner String Sys Tables
