lib/harness/tables.mli:
