lib/harness/experiments.mli: Adsm_apps Adsm_dsm Runner
