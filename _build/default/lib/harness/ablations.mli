(** Ablation and sensitivity studies for the design choices the paper
    fixes by measurement or assertion:

    - the SW ownership quantum ("results do not appear to be sensitive to
      the exact value", Section 2.3);
    - the WFS+WG write-granularity threshold ("results are not very
      dependent on the exact value", Section 3.2);
    - the network cost model (the paper's tradeoffs are tied to a 1997
      ATM cluster; a modern-network model shifts them);
    - the migratory-detection extension the paper sketches in Section 7;
    - processor-count scaling (the paper reports 8 processors only).

    Each function runs the study and returns a rendered table. *)

val quantum : unit -> string

val threshold : unit -> string

val network : unit -> string

val migratory : unit -> string

val lazydiff : unit -> string

val writeranges : unit -> string

val hlrc : unit -> string

val scaling : unit -> string

val names : string list

val run : string -> string option
(** [run name] executes one study by name. *)

val run_all : unit -> string
